#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/profile.h"
#include "trace/synthetic.h"
#include "trace/trace_source.h"
#include "trace/workload.h"
#include "trace/wrong_path.h"

namespace clusmt::trace {
namespace {

TEST(Profile, AllCategoryProfilesValidate) {
  for (Category cat : all_plain_categories()) {
    for (TraceKind kind : {TraceKind::kIlp, TraceKind::kMem}) {
      for (int v = 0; v < TracePool::kVariantsPerKind; ++v) {
        const TraceProfile p = make_profile(cat, kind, v);
        EXPECT_EQ(p.validate(), "") << p.name;
        EXPECT_NEAR(p.mix_sum(), 1.0, 1e-9) << p.name;
      }
    }
  }
}

TEST(Profile, MemTracesHaveLargerFootprints) {
  for (Category cat : all_plain_categories()) {
    const TraceProfile ilp = make_profile(cat, TraceKind::kIlp, 0);
    const TraceProfile mem = make_profile(cat, TraceKind::kMem, 0);
    EXPECT_GT(mem.footprint_bytes, 4 * 1024 * 1024u) << mem.name;
    EXPECT_LT(ilp.footprint_bytes, 1 * 1024 * 1024u) << ilp.name;
    EXPECT_GT(mem.chase_fraction, 0.0) << mem.name;
  }
}

TEST(Profile, VariantsAreDistinct) {
  const TraceProfile a = make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  const TraceProfile b = make_profile(Category::kISpec00, TraceKind::kIlp, 1);
  EXPECT_NE(a.name, b.name);
  EXPECT_NE(a.footprint_bytes, b.footprint_bytes);
}

TEST(Profile, DeterministicConstruction) {
  const TraceProfile a = make_profile(Category::kOffice, TraceKind::kMem, 2);
  const TraceProfile b = make_profile(Category::kOffice, TraceKind::kMem, 2);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.footprint_bytes, b.footprint_bytes);
  EXPECT_DOUBLE_EQ(a.dep_geo_p, b.dep_geo_p);
}

TEST(Profile, ValidationCatchesBadMix) {
  TraceProfile p = make_profile(Category::kDH, TraceKind::kIlp, 0);
  p.frac_load += 0.5;  // mix no longer sums to 1
  EXPECT_NE(p.validate(), "");
}

TEST(Profile, EffectiveFpLoadFraction) {
  TraceProfile p;
  p.frac_fp_add = p.frac_fp_mul = p.frac_simd = 0.0;
  p.frac_int_alu = 0.5;
  EXPECT_DOUBLE_EQ(p.effective_fp_load_fraction(), 0.0);
  p.fp_load_fraction = 0.7;
  EXPECT_DOUBLE_EQ(p.effective_fp_load_fraction(), 0.7);
}

TEST(Synthetic, DeterministicStream) {
  const TraceProfile p = make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  SyntheticTrace a(p, 42), b(p, 42);
  for (int i = 0; i < 5000; ++i) {
    const MicroOp ua = a.next();
    const MicroOp ub = b.next();
    ASSERT_EQ(ua.pc, ub.pc);
    ASSERT_EQ(ua.cls, ub.cls);
    ASSERT_EQ(ua.dst, ub.dst);
    ASSERT_EQ(ua.src0, ub.src0);
    ASSERT_EQ(ua.mem_addr, ub.mem_addr);
    ASSERT_EQ(ua.taken, ub.taken);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const TraceProfile p = make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  SyntheticTrace a(p, 1), b(p, 2);
  int diff = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next().mem_addr != b.next().mem_addr) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(Synthetic, MixMatchesProfileRoughly) {
  const TraceProfile p = make_profile(Category::kFSpec00, TraceKind::kIlp, 1);
  SyntheticTrace t(p, 7);
  std::map<UopClass, int> counts;
  const int n = 50000;
  int branches = 0;
  for (int i = 0; i < n; ++i) {
    const MicroOp op = t.next();
    if (op.is_branch()) {
      ++branches;
    } else {
      ++counts[op.cls];
    }
  }
  const int non_branch = n - branches;
  // FP-heavy profile: fp_add+fp_mul should clearly dominate int_mul.
  EXPECT_GT(counts[UopClass::kFpAdd], counts[UopClass::kIntMul]);
  EXPECT_NEAR(static_cast<double>(counts[UopClass::kLoad]) / non_branch,
              p.frac_load, 0.05);
  EXPECT_NEAR(static_cast<double>(counts[UopClass::kStore]) / non_branch,
              p.frac_store, 0.05);
  // Branch rate ~ 1/(avg_block_len+1).
  EXPECT_NEAR(static_cast<double>(branches) / n, 1.0 / (p.avg_block_len + 1),
              0.08);
}

TEST(Synthetic, AddressesStayInFootprint) {
  const TraceProfile p = make_profile(Category::kServer, TraceKind::kMem, 0);
  SyntheticTrace t(p, 3);
  std::uint64_t base = ~0ULL, top = 0;
  for (int i = 0; i < 20000; ++i) {
    const MicroOp op = t.next();
    if (!is_memory(op.cls)) continue;
    base = std::min(base, op.mem_addr);
    top = std::max(top, op.mem_addr);
  }
  EXPECT_LT(top - base, p.footprint_bytes + 4096);
}

TEST(Synthetic, BranchTargetsAreBlockStarts) {
  const TraceProfile p = make_profile(Category::kDH, TraceKind::kIlp, 0);
  SyntheticTrace t(p, 9);
  std::set<std::uint64_t> starts;
  for (const BasicBlock& b : t.program().blocks()) starts.insert(b.start_pc);
  for (int i = 0; i < 10000; ++i) {
    const MicroOp op = t.next();
    if (op.is_branch()) {
      EXPECT_TRUE(starts.count(op.target)) << std::hex << op.target;
      EXPECT_TRUE(starts.count(op.fallthrough));
    }
  }
}

TEST(Synthetic, LoopBranchesAreMostlyTaken) {
  const TraceProfile p = make_profile(Category::kFSpec00, TraceKind::kIlp, 0);
  SyntheticTrace t(p, 11);
  int taken = 0, total = 0;
  for (int i = 0; i < 50000; ++i) {
    const MicroOp op = t.next();
    if (op.is_branch() && !op.indirect) {
      ++total;
      taken += op.taken ? 1 : 0;
    }
  }
  ASSERT_GT(total, 100);
  // Loop-heavy predictable code is mostly taken branches.
  EXPECT_GT(static_cast<double>(taken) / total, 0.4);
}

TEST(WrongPath, DeterministicAndArmed) {
  const TraceProfile p = make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  WrongPathSource a, b;
  EXPECT_FALSE(a.armed());
  a.reset(&p, 5, 0x400100, 0x400200);
  b.reset(&p, 5, 0x400100, 0x400200);
  EXPECT_TRUE(a.armed());
  for (int i = 0; i < 200; ++i) {
    const MicroOp ua = a.next();
    const MicroOp ub = b.next();
    ASSERT_EQ(ua.pc, ub.pc);
    ASSERT_EQ(ua.cls, ub.cls);
    ASSERT_EQ(ua.mem_addr, ub.mem_addr);
  }
  a.disarm();
  EXPECT_FALSE(a.armed());
}

TEST(WrongPath, StartsAtWrongTarget) {
  const TraceProfile p = make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  WrongPathSource w;
  w.reset(&p, 5, 0x400100, 0xDEAD00);
  EXPECT_EQ(w.next().pc, 0xDEAD00u);
  EXPECT_EQ(w.next().pc, 0xDEAD04u);
}

TEST(WrongPath, NoBranchesEmitted) {
  // Wrong-path µops never spawn nested wrong paths in the model.
  const TraceProfile p = make_profile(Category::kOffice, TraceKind::kMem, 0);
  WrongPathSource w;
  w.reset(&p, 1, 0x400000, 0x500000);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(w.next().cls, UopClass::kBranch);
  }
}

TEST(VectorTrace, LoopsForever) {
  std::vector<MicroOp> ops(3);
  ops[0].pc = 0;
  ops[1].pc = 4;
  ops[2].pc = 8;
  VectorTrace t("loop", ops);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(t.next().pc, static_cast<std::uint64_t>((i % 3) * 4));
  }
  EXPECT_EQ(t.emitted(), 10u);
}

TEST(Workload, FullSuiteIs120) {
  const auto suite = build_full_suite(1);
  EXPECT_EQ(suite.size(), 120u);
  std::map<std::string, int> counts;
  for (const auto& w : suite) {
    ++counts[w.category];
    EXPECT_EQ(w.threads.size(), 2u);
  }
  EXPECT_EQ(counts["mixes"], 32);
  EXPECT_EQ(counts["ISPEC-FSPEC"], 16);
  EXPECT_EQ(counts["ISPEC00"], 8);
  EXPECT_EQ(counts.size(), 11u);
}

TEST(Workload, IspecFspecPairsIntWithFp) {
  const auto suite = build_full_suite(1);
  for (const auto& w : suite) {
    if (w.category != "ISPEC-FSPEC") continue;
    EXPECT_NE(w.threads[0].id().find("ISPEC00"), std::string::npos);
    EXPECT_NE(w.threads[1].id().find("FSPEC00"), std::string::npos);
  }
}

TEST(Workload, MixesPairDistinctCategories) {
  const auto suite = build_full_suite(7);
  for (const auto& w : suite) {
    if (w.category != "mixes") continue;
    const auto cat_of = [](const std::string& id) {
      return id.substr(0, id.find('.'));
    };
    EXPECT_NE(cat_of(w.threads[0].id()), cat_of(w.threads[1].id()))
        << w.name;
  }
}

TEST(Workload, QuickSuiteRespectsLimits) {
  const auto quick = build_quick_suite(1, 1, 4);
  std::map<std::string, int> per_group;
  int mixes = 0;
  for (const auto& w : quick) {
    if (w.category == "mixes") {
      ++mixes;
    } else {
      ++per_group[w.category + "/" + w.type];
    }
  }
  EXPECT_EQ(mixes, 4);
  for (const auto& [group, n] : per_group) EXPECT_EQ(n, 1) << group;
}

TEST(Workload, SeedsDeterministicAndTraceIdentityStable) {
  const auto a = build_full_suite(99);
  const auto b = build_full_suite(99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].threads[0].seed, b[i].threads[0].seed);
  }
  // Same trace id appearing in multiple workloads carries the same seed
  // (the single-thread baseline cache relies on this).
  std::map<std::string, std::uint64_t> seeds;
  for (const auto& w : a) {
    for (const auto& t : w.threads) {
      const auto it = seeds.find(t.id());
      if (it != seeds.end()) {
        EXPECT_EQ(it->second, t.seed) << t.id();
      } else {
        seeds.emplace(t.id(), t.seed);
      }
    }
  }
}

TEST(Workload, TracePoolLookupBounds) {
  TracePool pool(1);
  EXPECT_EQ(pool.size(), 9u * 2 * TracePool::kVariantsPerKind);
  // get() is [[nodiscard]]; the casts keep -Wunused-result quiet since only
  // the throw matters here.
  EXPECT_THROW((void)pool.get(Category::kDH, TraceKind::kIlp, -1),
               std::out_of_range);
  EXPECT_THROW(
      (void)pool.get(Category::kDH, TraceKind::kIlp,
                     TracePool::kVariantsPerKind),
      std::out_of_range);
}

TEST(Workload, CategoryDisplayOrderCoversSuite) {
  const auto suite = build_full_suite(1);
  const auto& order = category_display_order();
  for (const auto& w : suite) {
    EXPECT_NE(std::find(order.begin(), order.end(), w.category), order.end())
        << w.category;
  }
  EXPECT_EQ(workloads_in_category(suite, "mixes").size(), 32u);
}

}  // namespace
}  // namespace clusmt::trace
