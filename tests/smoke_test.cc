// End-to-end smoke tests: the simulator makes forward progress and commits
// work under every scheme.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/workload.h"

namespace clusmt {
namespace {

TEST(Smoke, SingleThreadCommits) {
  core::SimConfig config = harness::paper_baseline();
  config.num_threads = 1;
  core::Simulator sim(config);
  trace::TracePool pool(1234);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.run(20000);
  EXPECT_GT(sim.stats().committed[0], 1000u);
  EXPECT_EQ(sim.stats().committed[1], 0u);
}

TEST(Smoke, TwoThreadsCommitUnderEveryPolicy) {
  trace::TracePool pool(99);
  for (policy::PolicyKind kind : policy::all_policy_kinds()) {
    core::SimConfig config = harness::paper_baseline();
    config.policy = kind;
    core::Simulator sim(config);
    sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                  trace::TraceKind::kIlp, 0));
    sim.attach_thread(1, pool.get(trace::Category::kFSpec00,
                                  trace::TraceKind::kMem, 0));
    ASSERT_NO_THROW(sim.run(20000))
        << "policy " << policy::policy_kind_name(kind);
    EXPECT_GT(sim.stats().committed[0], 100u)
        << "policy " << policy::policy_kind_name(kind);
    EXPECT_GT(sim.stats().committed[1], 50u)
        << "policy " << policy::policy_kind_name(kind);
  }
}

TEST(Smoke, DeterministicRuns) {
  trace::TracePool pool(7);
  auto run_once = [&] {
    core::SimConfig config = harness::paper_baseline();
    config.policy = policy::PolicyKind::kCdprf;
    core::Simulator sim(config);
    sim.attach_thread(0, pool.get(trace::Category::kOffice,
                                  trace::TraceKind::kIlp, 1));
    sim.attach_thread(1, pool.get(trace::Category::kServer,
                                  trace::TraceKind::kMem, 1));
    sim.run(15000);
    return sim.stats();
  };
  const core::SimStats a = run_once();
  const core::SimStats b = run_once();
  EXPECT_EQ(a.committed[0], b.committed[0]);
  EXPECT_EQ(a.committed[1], b.committed[1]);
  EXPECT_EQ(a.committed_copies, b.committed_copies);
  EXPECT_EQ(a.squashed_uops, b.squashed_uops);
  EXPECT_EQ(a.issued_uops, b.issued_uops);
}

}  // namespace
}  // namespace clusmt
