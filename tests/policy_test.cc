#include <gtest/gtest.h>

#include "policy/partition.h"
#include "policy/policy.h"
#include "policy/regfile_policy.h"
#include "policy/simple.h"

namespace clusmt::policy {
namespace {

/// Baseline view: 2 threads, 2 clusters, 32-entry IQs, 64+64 registers.
PipelineView make_view() {
  PipelineView v;
  v.num_threads = 2;
  v.num_clusters = 2;
  v.iq_capacity = 32;
  v.rf_capacity[0] = 64;
  v.rf_capacity[1] = 64;
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < kNumRegClasses; ++k) v.rf_free[c][k] = 64;
  }
  return v;
}

TEST(PolicyFactory, NamesRoundTrip) {
  for (PolicyKind kind : all_policy_kinds()) {
    const auto parsed = parse_policy_kind(policy_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    const auto policy = make_policy(kind);
    EXPECT_EQ(policy->name(), policy_kind_name(kind));
  }
  EXPECT_FALSE(parse_policy_kind("NoSuchScheme").has_value());
  EXPECT_EQ(all_policy_kinds().size(), 14u);  // 10 paper + 4 extensions
}

TEST(Icount, SelectsFewestInFlight) {
  IcountPolicy policy;
  PipelineView v = make_view();
  v.iq_occ_tc[0][0] = 10;
  v.iq_occ_tc[0][1] = 5;  // thread 0: 15 in flight
  v.iq_occ_tc[1][0] = 3;
  v.iq_occ_tc[1][1] = 4;  // thread 1: 7 in flight
  EXPECT_EQ(policy.select_rename_thread(v, 0b11), 1);
  EXPECT_EQ(policy.select_rename_thread(v, 0b01), 0);  // masked
  EXPECT_EQ(policy.select_rename_thread(v, 0b00), -1);
}

TEST(Icount, TieAlternates) {
  IcountPolicy policy;
  PipelineView v = make_view();  // both zero in flight
  const ThreadId first = policy.select_rename_thread(v, 0b11);
  const ThreadId second = policy.select_rename_thread(v, 0b11);
  EXPECT_NE(first, second);
}

TEST(Icount, NoResourceLimits) {
  IcountPolicy policy;
  PipelineView v = make_view();
  v.iq_occ_tc[0][0] = 31;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 64));
}

TEST(Stall, GatesFetchOnlyForMissingThreads) {
  StallPolicy policy;
  PipelineView v = make_view();
  v.l2_pending[0] = true;
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b10u);
  // Rename proceeds for already-fetched µops (Tullsen & Brown's STALL).
  EXPECT_EQ(policy.rename_eligible(v, 0b11), 0b11u);
  v.l2_pending[1] = true;
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b00u);
}

TEST(FlushPlus, SingleMisserIsFlushedAndGated) {
  FlushPlusPolicy policy;
  PipelineView v = make_view();
  policy.on_l2_miss(0, /*load_seq=*/100, /*now=*/50);
  const auto request = policy.flush_request(51);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->tid, 0);
  EXPECT_EQ(request->after_seq, 100u);
  policy.on_flush_done(0);
  EXPECT_FALSE(policy.flush_request(52).has_value());  // one flush per miss
  v.l2_pending[0] = true;
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b10u);
  // Miss resolves: thread released.
  policy.on_l2_resolved(0, 100, 200);
  v.l2_pending[0] = false;
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b11u);
}

TEST(FlushPlus, EarliestMisserContinuesWhenBothMiss) {
  FlushPlusPolicy policy;
  PipelineView v = make_view();
  policy.on_l2_miss(0, 10, /*now=*/100);  // thread 0 misses first
  policy.on_flush_done(0);
  policy.on_l2_miss(1, 20, /*now=*/150);  // thread 1 misses second
  // Thread 1 must be flushed; thread 0 (earliest) continues.
  const auto request = policy.flush_request(151);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->tid, 1);
  policy.on_flush_done(1);
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b01u);  // only t0 fetches
  // Thread 0 resolves: thread 1 is now the sole misser, still gated.
  policy.on_l2_resolved(0, 10, 300);
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b01u);
}

TEST(FlushPlus, FlushBoundaryIsOldestMissingLoad) {
  FlushPlusPolicy policy;
  policy.on_l2_miss(0, 50, 10);
  policy.on_l2_miss(0, 30, 12);  // older load also misses
  const auto request = policy.flush_request(13);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->after_seq, 30u);
}

TEST(Cisp, CapsTotalOccupancyClusterBlind) {
  PolicyConfig config;
  CispPolicy policy(config);
  PipelineView v = make_view();  // total capacity 64, cap 32
  v.iq_occ_tc[0][0] = 30;
  v.iq_occ_tc[0][1] = 0;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 2, 2));   // reaches 32
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 3, 3));  // would exceed
  v.iq_occ_tc[0][1] = 2;
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 1, 1, 1));  // 33 > cap anywhere
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 1, 0, 32, 32));  // other thread free
}

TEST(Cisp, CountsWholeRenameGroupAcrossClusters) {
  // Regression: a µop plus its copies land in different clusters; the
  // cluster-blind cap must account for the group total, not each part.
  PolicyConfig config;
  CispPolicy policy(config);
  PipelineView v = make_view();
  v.iq_occ_tc[0][0] = 31;  // thread total 31, cap 32
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 1, 2));  // µop + 1 copy
}

TEST(Cssp, CapsPerClusterOccupancy) {
  PolicyConfig config;
  CsspPolicy policy(config);
  PipelineView v = make_view();  // per-cluster cap 16
  v.iq_occ_tc[0][0] = 16;
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 1, 16, 16));
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 1, 17, 17));
}

TEST(Cspsp, GuaranteePlusSharedPool) {
  PolicyConfig config;  // guarantee 25% = 8; shared pool = 32 - 16 = 16
  CspspPolicy policy(config);
  PipelineView v = make_view();
  // Within the guarantee: always allowed.
  v.iq_occ_tc[0][0] = 7;
  v.iq_occ[0] = 7;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  // Beyond the guarantee: allowed while the other thread's reserved slice
  // stays available. t1 uses 0, so 8 slots stay reserved for it.
  v.iq_occ_tc[0][0] = 8;
  v.iq_occ[0] = 8;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 16, 16));   // 24 + 8 res = 32
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 17, 17));  // would eat reserve
  // When t1 already uses its slice, t0 can push to capacity.
  v.iq_occ_tc[1][0] = 8;
  v.iq_occ[0] = 16;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 16, 16));
}

TEST(PrivateClusters, PinsThreadToItsCluster) {
  PrivateClustersPolicy policy;
  PipelineView v = make_view();
  EXPECT_EQ(policy.forced_cluster(v, 0), 0);
  EXPECT_EQ(policy.forced_cluster(v, 1), 1);
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 32, 32));
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 1, 1, 1));
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 1, 0, 1, 1));
}

TEST(Cssprf, PerClusterRegisterCap) {
  PolicyConfig config;
  CssprfPolicy policy(config);
  PipelineView v = make_view();  // 64/cluster, cap 32
  v.rf_used[0][0][0] = 32;
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 1));
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 1, RegClass::kInt, 32));
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kFp, 1));
  // Unbounded mode disables the cap.
  v.rf_unbounded = true;
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 1));
}

TEST(Cisprf, TotalRegisterCap) {
  PolicyConfig config;
  CisprfPolicy policy(config);
  PipelineView v = make_view();  // 128 total, cap 64
  v.rf_used[0][0][0] = 40;
  v.rf_used[0][1][0] = 24;  // 64 total
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 1));
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 1, RegClass::kInt, 1));
  v.rf_used[0][1][0] = 23;
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 1, RegClass::kInt, 1));
}

TEST(Cdprf, InitialThresholdIsHalf) {
  PolicyConfig config;
  CdprfPolicy policy(config);
  PipelineView v = make_view();  // 64/cluster => 128 total, half = 64
  v.now = 0;
  policy.begin_cycle(v);
  EXPECT_EQ(policy.threshold(0, RegClass::kInt), 64);
  EXPECT_EQ(policy.threshold(1, RegClass::kFp), 64);
}

TEST(Cdprf, StarvationCounterTracksBlockedCycles) {
  PolicyConfig config;
  CdprfPolicy policy(config);
  PipelineView v = make_view();
  v.now = 0;
  policy.begin_cycle(v);
  v.rf_blocked[0][0] = true;
  for (int i = 1; i <= 3; ++i) {
    v.now = static_cast<Cycle>(i);
    policy.begin_cycle(v);
  }
  EXPECT_EQ(policy.starvation(0, RegClass::kInt), 3u);
  v.rf_blocked[0][0] = false;
  v.now = 4;
  policy.begin_cycle(v);
  EXPECT_EQ(policy.starvation(0, RegClass::kInt), 0u);  // reset when unblocked
}

TEST(Cdprf, RfocAccumulatesOccupancyPlusStarvation) {
  PolicyConfig config;
  CdprfPolicy policy(config);
  PipelineView v = make_view();
  v.now = 0;
  policy.begin_cycle(v);  // occupancy 0, starvation 0
  v.rf_used[0][0][0] = 10;
  v.rf_used[0][1][0] = 5;
  v.rf_blocked[0][0] = true;
  v.now = 1;
  policy.begin_cycle(v);  // +15 occupancy +1 starvation
  EXPECT_EQ(policy.rfoc(0, RegClass::kInt), 16u);
}

TEST(Cdprf, IntervalRollSetsThresholdToAverageCappedAtHalf) {
  PolicyConfig config;
  config.cdprf_interval = 4;
  CdprfPolicy policy(config);
  PipelineView v = make_view();
  v.rf_used[0][0][0] = 20;  // constant occupancy 20
  v.rf_used[1][0][0] = 70;
  v.rf_used[1][1][0] = 70;  // thread 1: 140 -> capped at half (64)
  // begin_cycle accumulates at now = 0..4 (5 samples) and rolls the
  // interval after the accumulation at now == 4.
  for (Cycle t = 0; t <= 4; ++t) {
    v.now = t;
    policy.begin_cycle(v);
  }
  // threshold(0) = RFOC / interval = (5 * 20) / 4 = 25.
  EXPECT_EQ(policy.threshold(0, RegClass::kInt), 25);
  EXPECT_EQ(policy.threshold(1, RegClass::kInt), 64);  // capped at half
}

TEST(Cdprf, GuaranteeProtectsOtherThread) {
  PolicyConfig config;
  config.cdprf_interval = 2;
  CdprfPolicy policy(config);
  PipelineView v = make_view();
  // Interval passes with t1 holding 30 int registers every cycle:
  // RFOC = 3 samples * 30 = 90; threshold = 90 / 2 = 45.
  v.rf_used[1][0][0] = 30;
  for (Cycle t = 0; t <= 2; ++t) {
    v.now = t;
    policy.begin_cycle(v);
  }
  ASSERT_EQ(policy.threshold(1, RegClass::kInt), 45);
  const int t1_guarantee = 45;
  // t0 above its own threshold may only allocate while t1's guarantee
  // remains satisfiable from the free registers.
  v.rf_used[0][0][0] = 50;
  v.rf_used[0][1][0] = 14;  // t0 uses 64 total, above its threshold
  v.rf_used[1][0][0] = 0;   // t1 currently uses none
  const int free_total = 128 - 64;
  v.rf_free[0][0] = free_total / 2;
  v.rf_free[1][0] = free_total - free_total / 2;
  const int slack = free_total - t1_guarantee;  // 64 - 45 = 19
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, slack));
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, slack + 1));
}

TEST(Cdprf, WithinThresholdAlwaysAllowed) {
  PolicyConfig config;
  CdprfPolicy policy(config);
  PipelineView v = make_view();
  v.now = 0;
  policy.begin_cycle(v);  // thresholds = 64 (half of 128 total)
  v.rf_used[0][0][0] = 10;
  v.rf_free[0][0] = 0;  // cluster 0 empty, but cluster 1 has registers
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 1, RegClass::kInt, 1));
}

TEST(PartitionFraction, ScalesWithConfig) {
  PolicyConfig config;
  config.partition_fraction = 0.25;
  CsspPolicy policy(config);
  PipelineView v = make_view();
  v.iq_occ_tc[0][0] = 8;  // cap = 32 * 0.25 = 8
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
}

}  // namespace
}  // namespace clusmt::policy
