// Unit tests for the future-work adaptations of policy/adaptive.h:
// Flush++ mode switching, DCRA classification and caps, hill-climbing
// trial mechanics, and the unready-count front-end gate.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/simulator.h"
#include "harness/presets.h"
#include "policy/adaptive.h"
#include "trace/workload.h"

namespace clusmt::policy {
namespace {

/// Baseline view: 2 threads, 2 clusters, 32-entry IQs, 64+64 registers.
PipelineView make_view(int threads = 2) {
  PipelineView v;
  v.num_threads = threads;
  v.num_clusters = 2;
  v.iq_capacity = 32;
  v.rf_capacity[0] = 64;
  v.rf_capacity[1] = 64;
  for (int c = 0; c < 2; ++c) {
    for (int k = 0; k < kNumRegClasses; ++k) v.rf_free[c][k] = 64;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Flush++
// ---------------------------------------------------------------------------

TEST(FlushPlusPlus, StallModeWithTwoThreadsNeverFlushes) {
  FlushPlusPlusPolicy policy;
  PipelineView v = make_view(2);
  policy.begin_cycle(v);
  EXPECT_TRUE(policy.stall_mode());

  policy.on_l2_miss(0, /*load_seq=*/10, /*now=*/100);
  EXPECT_FALSE(policy.flush_request(101).has_value());
  // The missing thread is still fetch-gated (Stall semantics)...
  v.l2_pending[0] = true;
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b10u);
  // ...but keeps renaming its already-fetched µops.
  EXPECT_EQ(policy.rename_eligible(v, 0b11), 0b11u);
}

TEST(FlushPlusPlus, FlushModeWithFourThreads) {
  FlushPlusPlusPolicy policy;
  PipelineView v = make_view(4);
  policy.begin_cycle(v);
  EXPECT_FALSE(policy.stall_mode());

  policy.on_l2_miss(2, /*load_seq=*/42, /*now=*/7);
  const auto request = policy.flush_request(8);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->tid, 2);
  EXPECT_EQ(request->after_seq, 42u);

  // Squash performed: the thread is gated for rename too.
  policy.on_flush_done(2);
  EXPECT_EQ(policy.rename_eligible(v, 0b1111), 0b1011u);

  policy.on_l2_resolved(2, 42, 50);
  EXPECT_EQ(policy.rename_eligible(v, 0b1111), 0b1111u);
}

TEST(FlushPlusPlus, EarliestMisserExemptFromGatingInFlushMode) {
  FlushPlusPlusPolicy policy;
  PipelineView v = make_view(3);
  policy.begin_cycle(v);

  // A solo misser is flushed right away (Flush semantics).
  policy.on_l2_miss(1, 5, /*now=*/10);
  auto request = policy.flush_request(11);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->tid, 1);
  policy.on_flush_done(1);

  // A second misser arrives: it is flushed too, but the earliest misser
  // (thread 1) is now exempt from fetch gating and may continue.
  policy.on_l2_miss(0, 9, /*now=*/20);
  request = policy.flush_request(21);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->tid, 0);
  policy.on_flush_done(0);
  EXPECT_FALSE(policy.flush_request(22).has_value());
  EXPECT_EQ(policy.fetch_eligible(v, 0b111), 0b110u);
}

TEST(FlushPlusPlus, ModeFollowsThreadCount) {
  FlushPlusPlusPolicy policy;
  policy.begin_cycle(make_view(2));
  EXPECT_TRUE(policy.stall_mode());
  policy.begin_cycle(make_view(3));
  EXPECT_FALSE(policy.stall_mode());
  policy.begin_cycle(make_view(2));
  EXPECT_TRUE(policy.stall_mode());
}

// ---------------------------------------------------------------------------
// DCRA
// ---------------------------------------------------------------------------

TEST(Dcra, InactiveAloneGetsWholeResource) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  // Only thread 0 is active.
  v.decode_queue_depth[0] = 3;
  EXPECT_EQ(policy.cap_of(v, 0, 32), 32);
}

TEST(Dcra, TwoFastThreadsKeepFloorsForEachOther) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.decode_queue_depth[0] = 3;
  v.rob_occ[1] = 5;
  // Even share 16, fast floor 8: each may grow to 32 - 8 = 24.
  EXPECT_EQ(policy.cap_of(v, 0, 32), 24);
  EXPECT_EQ(policy.cap_of(v, 1, 32), 24);
}

TEST(Dcra, SlowThreadCappedAtFloorFastAbsorbsRemainder) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.decode_queue_depth[0] = 3;
  v.rob_occ[1] = 5;
  v.l2_pending[1] = true;  // thread 1 slow
  // Slow floor = 16 * 0.5 = 8; fast cap = 32 - 8 = 24.
  EXPECT_EQ(policy.cap_of(v, 1, 32), 8);
  EXPECT_EQ(policy.cap_of(v, 0, 32), 24);
}

TEST(Dcra, SlowShareKnobScalesTheSlowFloor) {
  PolicyConfig config;
  config.dcra_slow_share = 0.25;
  DcraPolicy policy{config};
  PipelineView v = make_view(2);
  v.decode_queue_depth[0] = 1;
  v.decode_queue_depth[1] = 1;
  v.l2_pending[1] = true;
  EXPECT_EQ(policy.cap_of(v, 1, 32), 4);   // 16 * 0.25
  EXPECT_EQ(policy.cap_of(v, 0, 32), 28);  // 32 - 4
}

TEST(Dcra, FourActiveThreadsShareWithFloors) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(4);
  for (int t = 0; t < 4; ++t) v.decode_queue_depth[t] = 1;
  // Even share 8, fast floor 4: cap = 32 - 3*4 = 20.
  EXPECT_EQ(policy.cap_of(v, 0, 32), 20);
  v.l2_pending[3] = true;
  EXPECT_EQ(policy.cap_of(v, 3, 32), 4);   // slow: capped at floor
  EXPECT_EQ(policy.cap_of(v, 0, 32), 20);  // 32 - 4 - 4 - 4
}

TEST(Dcra, IqCapIsPerCluster) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.decode_queue_depth[0] = 1;
  v.decode_queue_depth[1] = 1;
  v.l2_pending[0] = true;  // thread 0 slow: per-cluster cap 8
  v.iq_occ_tc[0][0] = 8;
  v.iq_occ_tc[0][1] = 0;
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));  // cluster 0 full
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 1, 1, 1));   // cluster 1 open
}

TEST(Dcra, RfCapIsTotalAcrossClusters) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.decode_queue_depth[0] = 1;
  v.decode_queue_depth[1] = 1;
  v.l2_pending[0] = true;  // thread 0 slow: total cap = 128 * 0.25 = 32
  v.rf_used[0][0][0] = 20;
  v.rf_used[0][1][0] = 12;  // 32 total in class kInt
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 1));
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 1, RegClass::kInt, 1));
  // The FP file is untouched; its own cap applies independently.
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kFp, 1));
}

TEST(Dcra, UnboundedRfNeverLimits) {
  DcraPolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.rf_unbounded = true;
  v.decode_queue_depth[0] = 1;
  v.decode_queue_depth[1] = 1;
  v.l2_pending[0] = true;
  v.rf_used[0][0][0] = 1000;
  EXPECT_TRUE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 64));
}

// ---------------------------------------------------------------------------
// HillClimb
// ---------------------------------------------------------------------------

/// Advances `policy` through one epoch of `epoch` cycles, reporting
/// `committed` additional µops per thread at the boundary.
void run_epoch(HillClimbPolicy& policy, PipelineView& v, Cycle epoch,
               std::uint64_t committed0, std::uint64_t committed1) {
  v.now += epoch;
  v.committed[0] += committed0;
  v.committed[1] += committed1;
  policy.begin_cycle(v);
}

TEST(HillClimb, StartsWithEvenShares) {
  PolicyConfig config;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  policy.begin_cycle(v);
  EXPECT_DOUBLE_EQ(policy.share(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.share(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.trial_share(0), 0.5);
}

TEST(HillClimb, TrialsProbeUpAndDownThenAdoptBest) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  config.hillclimb_delta = 0.125;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  policy.begin_cycle(v);  // arms epoch 0 (base trial)

  run_epoch(policy, v, 100, 500, 500);  // base scores 1000
  EXPECT_DOUBLE_EQ(policy.trial_share(0), 0.625);  // up-trial armed

  run_epoch(policy, v, 100, 900, 400);  // up scores 1300 (best)
  EXPECT_DOUBLE_EQ(policy.trial_share(0), 0.375);  // down-trial armed

  run_epoch(policy, v, 100, 300, 500);  // down scores 800
  EXPECT_EQ(policy.rounds_completed(), 1u);
  // The up-trial won: thread 0's incumbent share moved up by delta.
  EXPECT_DOUBLE_EQ(policy.share(0), 0.625);
  EXPECT_DOUBLE_EQ(policy.share(1), 0.375);
  EXPECT_NEAR(policy.share(0) + policy.share(1), 1.0, 1e-12);
}

TEST(HillClimb, KeepsBaseWhenPerturbationsLose) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  policy.begin_cycle(v);

  run_epoch(policy, v, 100, 800, 800);  // base 1600
  run_epoch(policy, v, 100, 500, 500);  // up 1000
  run_epoch(policy, v, 100, 400, 400);  // down 800
  EXPECT_EQ(policy.rounds_completed(), 1u);
  EXPECT_DOUBLE_EQ(policy.share(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.share(1), 0.5);
}

TEST(HillClimb, SharesRespectFloorUnderRepeatedWins) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  config.hillclimb_delta = 0.25;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  policy.begin_cycle(v);

  // Thread 0's up-trial always wins; shares must stop at the floor.
  for (int round = 0; round < 6; ++round) {
    run_epoch(policy, v, 100, 100, 100);          // base
    run_epoch(policy, v, 100, 10000, 100);        // up wins...
    run_epoch(policy, v, 100, 50, 50);            // ...down loses
  }
  const double floor = HillClimbPolicy::share_floor(2);
  EXPECT_GE(policy.share(0), floor - 1e-12);
  EXPECT_GE(policy.share(1), floor - 1e-12);
  EXPECT_NEAR(policy.share(0) + policy.share(1), 1.0, 1e-12);
}

TEST(HillClimb, StatsResetRearmsEpochWithoutAdopting) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  v.committed[0] = 5000;
  v.committed[1] = 5000;
  policy.begin_cycle(v);

  // A reset_stats() makes committed run backwards across the boundary.
  v.now += 100;
  v.committed[0] = 10;
  v.committed[1] = 10;
  policy.begin_cycle(v);
  EXPECT_EQ(policy.rounds_completed(), 0u);
  EXPECT_DOUBLE_EQ(policy.trial_share(0), 0.5);  // still the base trial
}

TEST(HillClimb, CapsFollowTrialShares) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  config.hillclimb_delta = 0.25;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  policy.begin_cycle(v);
  // Base trial: share 0.5 of a 32-entry IQ = 16 per cluster.
  v.iq_occ_tc[0][0] = 16;
  EXPECT_FALSE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  v.iq_occ_tc[0][0] = 15;
  EXPECT_TRUE(policy.allow_iq_dispatch(v, 0, 0, 1, 1));
  // RF total: 0.5 of 128 = 64.
  v.rf_used[0][0][0] = 32;
  v.rf_used[0][1][0] = 32;
  EXPECT_FALSE(policy.allow_rf_alloc(v, 0, 0, RegClass::kInt, 1));
}

TEST(HillClimb, RotatesPerturbedThreadAcrossRounds) {
  PolicyConfig config;
  config.hillclimb_epoch = 100;
  config.hillclimb_delta = 0.125;
  HillClimbPolicy policy{config};
  PipelineView v = make_view(2);
  v.now = 1;
  policy.begin_cycle(v);

  // Round 0 perturbs thread 0; all trials score equally (base adopted).
  run_epoch(policy, v, 100, 100, 100);
  run_epoch(policy, v, 100, 100, 100);
  run_epoch(policy, v, 100, 100, 100);
  EXPECT_EQ(policy.rounds_completed(), 1u);
  // Round 1 perturbs thread 1: its up-trial raises share(1).
  run_epoch(policy, v, 100, 100, 100);  // base
  EXPECT_DOUBLE_EQ(policy.trial_share(1), 0.625);
}

// ---------------------------------------------------------------------------
// UnreadyGate
// ---------------------------------------------------------------------------

TEST(UnreadyGate, GatesThreadsAboveThreshold) {
  UnreadyGatePolicy policy{PolicyConfig{}};  // fraction 0.25 of 64 = 16
  PipelineView v = make_view(2);
  EXPECT_EQ(policy.gate_threshold(v), 16);

  v.iq_unready_tc[0][0] = 10;
  v.iq_unready_tc[0][1] = 7;  // 17 > 16: gated
  v.iq_unready_tc[1][0] = 16;  // exactly at threshold: not gated
  EXPECT_EQ(policy.fetch_eligible(v, 0b11), 0b10u);
}

TEST(UnreadyGate, ThresholdHasFloorOfFour) {
  PolicyConfig config;
  config.unready_gate_fraction = 0.01;
  UnreadyGatePolicy policy{config};
  PipelineView v = make_view(2);
  v.iq_capacity = 4;  // 0.01 * 8 would round to 0
  EXPECT_EQ(policy.gate_threshold(v), 4);
}

TEST(UnreadyGate, RenameSelectionPrefersFewestUnready) {
  UnreadyGatePolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.iq_unready_tc[0][0] = 8;
  v.iq_unready_tc[1][0] = 2;
  // Thread 1 has fewer unready µops even though it has more in flight.
  v.iq_occ_tc[0][0] = 10;
  v.iq_occ_tc[1][0] = 20;
  EXPECT_EQ(policy.select_rename_thread(v, 0b11), 1);
}

TEST(UnreadyGate, FallsBackToIcountOnUnreadyTies) {
  UnreadyGatePolicy policy{PolicyConfig{}};
  PipelineView v = make_view(2);
  v.iq_unready_tc[0][0] = 4;
  v.iq_unready_tc[1][0] = 4;
  v.iq_occ_tc[0][0] = 3;
  v.iq_occ_tc[1][0] = 9;
  EXPECT_EQ(policy.select_rename_thread(v, 0b11), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: the extension schemes drive the real pipeline
// ---------------------------------------------------------------------------

class AdaptiveEndToEnd : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AdaptiveEndToEnd, TwoThreadsCommitAndRespectDeterminism) {
  trace::TracePool pool(4242);
  core::SimConfig config = harness::paper_baseline();
  config.policy = GetParam();

  auto run_once = [&]() {
    core::Simulator sim(config);
    sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                  trace::TraceKind::kIlp, 0));
    sim.attach_thread(1, pool.get(trace::Category::kServer,
                                  trace::TraceKind::kMem, 0));
    sim.run(30000);
    return sim.stats();
  };

  const core::SimStats a = run_once();
  const core::SimStats b = run_once();
  EXPECT_GT(a.committed[0], 100u);
  EXPECT_GT(a.committed[1], 50u);
  EXPECT_EQ(a.committed[0], b.committed[0]);
  EXPECT_EQ(a.committed[1], b.committed[1]);
  EXPECT_EQ(a.copies_created, b.copies_created);
}

INSTANTIATE_TEST_SUITE_P(
    Extensions, AdaptiveEndToEnd,
    ::testing::Values(PolicyKind::kFlushPlusPlus, PolicyKind::kDcra,
                      PolicyKind::kHillClimb, PolicyKind::kUnreadyGate),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name{policy_kind_name(info.param)};
      for (char& ch : name) {
        if (ch == '+') ch = 'P';
      }
      return name;
    });

TEST(AdaptiveEndToEnd, HillClimbLearnsInsideTheSimulator) {
  trace::TracePool pool(77);
  core::SimConfig config = harness::paper_baseline();
  config.policy = policy::PolicyKind::kHillClimb;
  config.policy_config.hillclimb_epoch = 2048;
  core::Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.attach_thread(1, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kMem, 0));
  sim.run(60000);
  const auto& policy =
      dynamic_cast<const HillClimbPolicy&>(sim.policy());
  // 60000 cycles / 2048-cycle epochs / 3 trials per round >= 8 rounds.
  EXPECT_GE(policy.rounds_completed(), 8u);
  const double floor = HillClimbPolicy::share_floor(2);
  EXPECT_GE(policy.share(0), floor - 1e-12);
  EXPECT_GE(policy.share(1), floor - 1e-12);
  EXPECT_NEAR(policy.share(0) + policy.share(1), 1.0, 1e-9);
}

}  // namespace
}  // namespace clusmt::policy
