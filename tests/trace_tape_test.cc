// Differential coverage for the replay-tape trace datapath: a TapeTrace
// replaying a TraceTape must produce exactly the µop stream of the live
// SyntheticTrace generator it recorded — every field, in order — for every
// workload character, across seeds, across the frozen-tape live-fallback
// seam, and through a full simulation including wrong-path fetch, squashes
// and policy flush/replay. This is the trace layer's analogue of the issue
// stage's kScanReference oracle (and of trace_flat_test.cc one level up):
// the tape records the generator's own output, so any divergence is a tape
// bug (chunk indexing, freeze seam, registry keying), never an RNG one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "harness/presets.h"
#include "harness/runner.h"
#include "harness/tape_registry.h"
#include "trace/profile.h"
#include "trace/synthetic.h"
#include "trace/tape.h"
#include "trace/workload.h"

namespace clusmt::trace {
namespace {

void expect_same_uop(const MicroOp& a, const MicroOp& b,
                     const std::string& at) {
  ASSERT_EQ(a.pc, b.pc) << at;
  ASSERT_EQ(a.cls, b.cls) << at;
  ASSERT_EQ(a.dst, b.dst) << at;
  ASSERT_EQ(a.src0, b.src0) << at;
  ASSERT_EQ(a.src1, b.src1) << at;
  ASSERT_EQ(a.mem_addr, b.mem_addr) << at;
  ASSERT_EQ(a.taken, b.taken) << at;
  ASSERT_EQ(a.indirect, b.indirect) << at;
  ASSERT_EQ(a.target, b.target) << at;
  ASSERT_EQ(a.fallthrough, b.fallthrough) << at;
}

/// Replays `uops` µops through a fresh tape (mixed fill sizes) against a
/// lockstep live generator over the same (program, seed).
void expect_tape_matches_live(const TraceProfile& profile, std::uint64_t seed,
                              int uops, const std::string& label) {
  auto program = std::make_shared<const SyntheticProgram>(profile, seed);
  TraceTape tape(program, seed, /*budget=*/nullptr);
  TapeTrace replay(
      std::shared_ptr<TraceTape>(&tape, [](TraceTape*) {}));
  SyntheticTrace live(program, seed);
  MicroOp buf[13];
  int emitted = 0;
  while (emitted < uops) {
    const int n = 1 + emitted % 13;
    replay.fill(buf, n);
    for (int i = 0; i < n; ++i) {
      expect_same_uop(buf[i], live.next(),
                      label + " uop #" + std::to_string(emitted + i));
    }
    emitted += n;
  }
}

TEST(TraceTapeDifferential, AllCharactersKindsVariantsMatchLive) {
  for (Category cat : all_plain_categories()) {
    for (TraceKind kind : {TraceKind::kIlp, TraceKind::kMem}) {
      for (int v = 0; v < TracePool::kVariantsPerKind; ++v) {
        const TraceProfile profile = make_profile(cat, kind, v);
        expect_tape_matches_live(profile, /*seed=*/7 + v, /*uops=*/4000,
                                 profile.name);
      }
    }
  }
}

TEST(TraceTapeDifferential, SeedSweepMatchesLive) {
  const TraceProfile profile =
      make_profile(Category::kISpec00, TraceKind::kIlp, 0);
  for (std::uint64_t seed : {1ull, 2ull, 42ull, 0xDEADBEEFull, 1ull << 40}) {
    expect_tape_matches_live(profile, seed, /*uops=*/5000,
                             profile.name + "@seed" + std::to_string(seed));
  }
}

TEST(TraceTapeDifferential, FrozenTapeContinuesLiveBitIdentically) {
  // A one-chunk budget freezes the tape at the first chunk boundary; a
  // reader demanding three chunks must cross the freeze seam without a
  // single diverging µop, and a second reader must replay the recorded
  // prefix then go live independently.
  const TraceProfile profile =
      make_profile(Category::kServer, TraceKind::kMem, 1);
  constexpr std::uint64_t kSeed = 11;
  auto program = std::make_shared<const SyntheticProgram>(profile, kSeed);
  constexpr std::uint64_t kChunkBytes =
      TraceTape::kChunkUops * sizeof(MicroOp);
  TapeBudget budget(kChunkBytes);
  const int uops = static_cast<int>(3 * TraceTape::kChunkUops);
  {
    TraceTape tape(program, kSeed, &budget);
    auto shared = std::shared_ptr<TraceTape>(&tape, [](TraceTape*) {});
    TapeTrace reader_a(shared);
    TapeTrace reader_b(shared);
    SyntheticTrace live_a(program, kSeed);
    std::vector<MicroOp> got(static_cast<std::size_t>(uops));
    reader_a.fill(got.data(), uops);
    EXPECT_TRUE(tape.frozen());
    EXPECT_TRUE(reader_a.went_live());
    EXPECT_EQ(tape.recorded(), TraceTape::kChunkUops);
    for (int i = 0; i < uops; ++i) {
      expect_same_uop(got[i], live_a.next(),
                      "reader A uop #" + std::to_string(i));
    }
    // Reader B starts after the freeze: recorded prefix from the tape,
    // remainder from its own clone of the parked recorder.
    SyntheticTrace live_b(program, kSeed);
    reader_b.fill(got.data(), uops);
    EXPECT_TRUE(reader_b.went_live());
    for (int i = 0; i < uops; ++i) {
      expect_same_uop(got[i], live_b.next(),
                      "reader B uop #" + std::to_string(i));
    }
  }
  // The destroyed tape returns its chunk storage to the budget.
  EXPECT_EQ(budget.remaining(), kChunkBytes);
}

TEST(TraceTapeDifferential, MaxUopsCapFreezesUnbudgetedTape) {
  const TraceProfile profile =
      make_profile(Category::kMultimedia, TraceKind::kIlp, 0);
  auto program = std::make_shared<const SyntheticProgram>(profile, 3);
  TraceTape tape(program, 3, /*budget=*/nullptr,
                 /*max_uops=*/TraceTape::kChunkUops);
  EXPECT_EQ(tape.extend_to(2 * TraceTape::kChunkUops), TraceTape::kChunkUops);
  EXPECT_TRUE(tape.frozen());
}

}  // namespace
}  // namespace clusmt::trace

namespace clusmt::harness {
namespace {

/// Field-by-field SimStats equality with a readable failure message.
void expect_stats_equal(const core::SimStats& a, const core::SimStats& b,
                        const std::string& label) {
#define CLUSMT_EXPECT_FIELD(field) \
  EXPECT_EQ(a.field, b.field) << label << ": SimStats::" #field " diverged"
  CLUSMT_EXPECT_FIELD(cycles);
  for (int t = 0; t < kMaxThreads; ++t) CLUSMT_EXPECT_FIELD(committed[t]);
  CLUSMT_EXPECT_FIELD(committed_copies);
  CLUSMT_EXPECT_FIELD(committed_branches);
  CLUSMT_EXPECT_FIELD(committed_loads);
  CLUSMT_EXPECT_FIELD(committed_stores);
  CLUSMT_EXPECT_FIELD(renamed_uops);
  CLUSMT_EXPECT_FIELD(copies_created);
  CLUSMT_EXPECT_FIELD(squashed_uops);
  CLUSMT_EXPECT_FIELD(branches_resolved);
  CLUSMT_EXPECT_FIELD(mispredicts_resolved);
  CLUSMT_EXPECT_FIELD(policy_flushes);
  CLUSMT_EXPECT_FIELD(load_l2_misses);
  CLUSMT_EXPECT_FIELD(store_l2_misses);
  CLUSMT_EXPECT_FIELD(load_forwards);
#undef CLUSMT_EXPECT_FIELD
}

core::SimStats run_cell(const core::SimConfig& config,
                        const trace::WorkloadSpec& workload) {
  // simulate_workload routes thread attachment through the tape registry,
  // so the enabled flag picks the datapath under test.
  return simulate_workload(config, workload, /*cycles=*/5000, /*warmup=*/1000)
      .stats;
}

trace::WorkloadSpec squashy_workload(std::uint64_t seed) {
  const trace::TracePool pool(seed);
  trace::WorkloadSpec w;
  w.name = "tape-squashy";
  w.category = "TEST";
  w.type = "mix";
  w.threads = {pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
               pool.get(trace::Category::kFSpec00, trace::TraceKind::kMem, 1)};
  for (auto& t : w.threads) {
    // Mispredict-heavy traces keep wrong-path fetch and squash replay
    // permanently busy — the paths a rewinding tape cursor would break.
    t.profile.hard_branch_fraction = 0.5;
    t.profile.name += "+squashy";
  }
  return w;
}

TEST(TapeRegistryDifferential, FullSimWithSquashesMatchesNoTape) {
  TapeRegistry& reg = TapeRegistry::instance();
  const trace::WorkloadSpec workload = squashy_workload(/*seed=*/7);
  for (const policy::PolicyKind scheme :
       {policy::PolicyKind::kIcount, policy::PolicyKind::kFlushPlus}) {
    core::SimConfig config = rf_study_config(64);
    config.policy = scheme;
    const std::string label(policy::policy_kind_name(scheme));
    reg.clear();
    reg.set_enabled(true);
    const core::SimStats taped = run_cell(config, workload);
    EXPECT_EQ(reg.recordings(), 2u) << label;
    reg.set_enabled(false);
    const core::SimStats live = run_cell(config, workload);
    EXPECT_EQ(reg.live_sources(), 2u) << label;
    reg.set_enabled(true);
    expect_stats_equal(taped, live, label);
  }
}

TEST(TapeRegistry, CrossCellReuseRecordsOnce) {
  // Two sweep cells sharing (profile, seed) traces — same workload under
  // two different machine configs — must record each trace once and replay
  // it for every later attachment.
  TapeRegistry& reg = TapeRegistry::instance();
  reg.clear();
  reg.set_enabled(true);
  const trace::TracePool pool(/*master_seed=*/1);
  trace::WorkloadSpec w;
  w.name = "reuse";
  w.category = "TEST";
  w.type = "ilp";
  w.threads = {pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 0),
               pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, 1)};

  core::SimConfig a = rf_study_config(64);
  (void)run_cell(a, w);
  EXPECT_EQ(reg.recordings(), 2u);
  EXPECT_EQ(reg.hits(), 0u);
  EXPECT_EQ(reg.size(), 2u);

  core::SimConfig b = rf_study_config(64);
  b.policy = policy::PolicyKind::kCssp;  // different cell, same traces
  (void)run_cell(b, w);
  EXPECT_EQ(reg.recordings(), 2u) << "second cell re-recorded a tape";
  EXPECT_EQ(reg.hits(), 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(TapeRegistry, ContentKeyedNotNameKeyed) {
  // Same display name, different seed => distinct tapes; the registry keys
  // on trace *content* exactly like the baseline cache.
  TapeRegistry& reg = TapeRegistry::instance();
  reg.clear();
  reg.set_enabled(true);
  const trace::TracePool pool(/*master_seed=*/1);
  trace::TraceSpec spec =
      pool.get(trace::Category::kServer, trace::TraceKind::kMem, 0);
  (void)reg.source_for(spec);
  trace::TraceSpec renamed = spec;
  renamed.profile.name = "alias";
  (void)reg.source_for(renamed);
  EXPECT_EQ(reg.recordings(), 1u) << "name change must not split the tape";
  spec.seed += 1;
  (void)reg.source_for(spec);
  EXPECT_EQ(reg.recordings(), 2u) << "seed change must split the tape";
}

}  // namespace
}  // namespace clusmt::harness
