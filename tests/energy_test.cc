// Energy-model unit and integration tests: component decomposition,
// size scaling, waste accounting, and the scheme-level relative orderings
// the model exists to expose.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

SimStats busy_stats() {
  SimStats s;
  s.cycles = 1000;
  s.renamed_uops = 5000;
  s.copies_created = 400;
  s.issued_uops = 4800;
  s.squashed_uops = 300;
  s.committed[0] = 2300;
  s.committed[1] = 2200;
  s.committed_loads = 1200;
  s.committed_stores = 600;
  s.load_l2_misses = 40;
  s.store_l2_misses = 5;
  return s;
}

TEST(EnergyModel, ZeroActivityLeavesOnlyStaticCharge) {
  SimStats s;
  s.cycles = 500;
  const auto e = estimate_energy(s, harness::paper_baseline());
  EXPECT_GT(e.static_clock, 0.0);
  EXPECT_DOUBLE_EQ(e.front_end, 0.0);
  EXPECT_DOUBLE_EQ(e.issue_queue, 0.0);
  EXPECT_DOUBLE_EQ(e.register_file, 0.0);
  EXPECT_DOUBLE_EQ(e.execution, 0.0);
  EXPECT_DOUBLE_EQ(e.memory, 0.0);
  EXPECT_DOUBLE_EQ(e.interconnect, 0.0);
  EXPECT_DOUBLE_EQ(e.wasted, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.static_clock);
}

TEST(EnergyModel, TotalIsSumOfComponents) {
  const auto e = estimate_energy(busy_stats(), harness::paper_baseline());
  const double sum = e.front_end + e.issue_queue + e.register_file +
                     e.execution + e.memory + e.interconnect + e.wasted +
                     e.static_clock;
  EXPECT_DOUBLE_EQ(e.total(), sum);
  EXPECT_GT(e.front_end, 0.0);
  EXPECT_GT(e.interconnect, 0.0);
  EXPECT_GT(e.wasted, 0.0);
}

TEST(EnergyModel, MoreSquashesCostMore) {
  SimStats a = busy_stats();
  SimStats b = busy_stats();
  b.squashed_uops += 1000;
  const auto config = harness::paper_baseline();
  EXPECT_GT(estimate_energy(b, config).total(),
            estimate_energy(a, config).total());
}

TEST(EnergyModel, CopiesChargeInterconnectAndRename) {
  SimStats a = busy_stats();
  SimStats b = busy_stats();
  b.copies_created += 500;
  const auto config = harness::paper_baseline();
  const auto ea = estimate_energy(a, config);
  const auto eb = estimate_energy(b, config);
  EXPECT_GT(eb.interconnect, ea.interconnect);
  EXPECT_GT(eb.front_end, ea.front_end);
  EXPECT_GT(eb.issue_queue, ea.issue_queue);
  EXPECT_DOUBLE_EQ(eb.execution, ea.execution);  // copies don't use FUs here
}

TEST(EnergyModel, BiggerIssueQueuesCostMorePerIssue) {
  const SimStats s = busy_stats();
  auto config32 = harness::iq_study_config(32);
  auto config64 = harness::iq_study_config(64);
  const auto e32 = estimate_energy(s, config32);
  const auto e64 = estimate_energy(s, config64);
  EXPECT_GT(e64.issue_queue, e32.issue_queue);
  EXPECT_NEAR(e64.issue_queue, 2.0 * e32.issue_queue, 1e-9);
}

TEST(EnergyModel, BiggerRegisterFilesCostMorePerAccess) {
  const SimStats s = busy_stats();
  const auto e64 = estimate_energy(s, harness::rf_study_config(64));
  const auto e128 = estimate_energy(s, harness::rf_study_config(128));
  EXPECT_NEAR(e128.register_file, 2.0 * e64.register_file, 1e-9);
}

TEST(EnergyModel, UnboundedResourcesChargeBaseline) {
  const SimStats s = busy_stats();
  const auto bounded = estimate_energy(s, harness::rf_study_config(64));
  const auto unbounded = estimate_energy(s, harness::iq_study_config(32));
  // iq_study_config has unbounded RFs: charged as baseline (scale 1).
  EXPECT_DOUBLE_EQ(unbounded.register_file, bounded.register_file);
}

TEST(EnergyModel, PerCommittedUopAndEdpBehave) {
  const SimStats s = busy_stats();
  const auto e = estimate_energy(s, harness::paper_baseline());
  EXPECT_GT(e.per_committed_uop(s), 0.0);
  EXPECT_DOUBLE_EQ(e.per_committed_uop(s),
                   e.total() / static_cast<double>(s.committed_total()));
  // Fixed-work EDP: (energy/work) x (delay/work).
  const auto committed = static_cast<double>(s.committed_total());
  EXPECT_DOUBLE_EQ(e.edp(s), (e.total() / committed) *
                                 (static_cast<double>(s.cycles) / committed));

  const SimStats empty;
  const auto e_empty = estimate_energy(empty, harness::paper_baseline());
  EXPECT_DOUBLE_EQ(e_empty.per_committed_uop(empty), 0.0);
  EXPECT_DOUBLE_EQ(e_empty.edp(empty), 0.0);
}

TEST(EnergyModel, EdpRewardsFasterRunsAtEqualEnergy) {
  SimStats fast = busy_stats();
  SimStats slow = busy_stats();
  // Same activity and energy, but the slow machine needed twice the
  // cycles for it (minus the static charge difference, add it back by
  // comparing with identical configs and zero static cost).
  slow.cycles = 2 * fast.cycles;
  EnergyParams params;
  params.static_per_cluster = 0.0;
  const auto config = harness::paper_baseline();
  const auto e_fast = estimate_energy(fast, config, params);
  const auto e_slow = estimate_energy(slow, config, params);
  EXPECT_DOUBLE_EQ(e_fast.total(), e_slow.total());
  EXPECT_LT(e_fast.edp(fast), e_slow.edp(slow));
}

// --- Integration: scheme-level orderings on a real simulation ---

struct SchemeEnergy {
  EnergyBreakdown energy;
  SimStats stats;
};

SchemeEnergy run_scheme(policy::PolicyKind kind) {
  trace::TracePool pool(321);
  SimConfig config = harness::paper_baseline();
  config.policy = kind;
  Simulator sim(config);
  sim.attach_thread(0, pool.get(trace::Category::kISpec00,
                                trace::TraceKind::kIlp, 0));
  sim.attach_thread(1, pool.get(trace::Category::kServer,
                                trace::TraceKind::kMem, 0));
  sim.run(40000);
  return {estimate_energy(sim.stats(), config), sim.stats()};
}

TEST(EnergyIntegration, PrivateClustersSpendLessOnInterconnect) {
  const auto pc = run_scheme(policy::PolicyKind::kPrivateClusters);
  const auto cssp = run_scheme(policy::PolicyKind::kCssp);
  EXPECT_LT(pc.energy.interconnect, cssp.energy.interconnect);
  EXPECT_DOUBLE_EQ(pc.energy.interconnect, 0.0);
}

TEST(EnergyIntegration, FlushPlusWastesMoreThanIcount) {
  const auto flush = run_scheme(policy::PolicyKind::kFlushPlus);
  const auto icount = run_scheme(policy::PolicyKind::kIcount);
  EXPECT_GT(flush.stats.policy_flushes, 0u);
  EXPECT_GT(flush.energy.wasted, icount.energy.wasted);
}

TEST(EnergyIntegration, DeterministicAcrossRuns) {
  const auto a = run_scheme(policy::PolicyKind::kCdprf);
  const auto b = run_scheme(policy::PolicyKind::kCdprf);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

}  // namespace
}  // namespace clusmt::core
