// Failure injection and edge configurations: the watchdog trap, config
// validation, stat-reset semantics, run chunking, and cluster-count
// extremes (1 cluster = a monolithic SMT back-end; 4 clusters = the
// machine maximum).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simulator.h"
#include "harness/presets.h"
#include "trace/workload.h"

namespace clusmt::core {
namespace {

trace::TraceSpec ilp_trace(std::uint64_t seed, int variant = 0) {
  trace::TracePool pool(seed);
  return pool.get(trace::Category::kISpec00, trace::TraceKind::kIlp, variant);
}

trace::TraceSpec mem_trace(std::uint64_t seed, int variant = 0) {
  trace::TracePool pool(seed);
  return pool.get(trace::Category::kServer, trace::TraceKind::kMem, variant);
}

// --------------------------------------------------------------------------
// Watchdog
// --------------------------------------------------------------------------

TEST(Watchdog, TripsBeforeFirstCommitWhenImpossiblyTight) {
  SimConfig config = harness::paper_baseline();
  // The pipeline needs >5 cycles to fill before anything can commit; a
  // 5-cycle watchdog must therefore fire and abort the run.
  config.watchdog_cycles = 5;
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(1));
  sim.attach_thread(1, mem_trace(1));
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(Watchdog, SilentWithHealthyMargin) {
  SimConfig config = harness::paper_baseline();
  config.watchdog_cycles = 10000;
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(2));
  sim.attach_thread(1, mem_trace(2));
  EXPECT_NO_THROW(sim.run(30000));
  EXPECT_GT(sim.stats().committed_total(), 0u);
}

// --------------------------------------------------------------------------
// Configuration validation
// --------------------------------------------------------------------------

TEST(ConfigValidation, RejectsZeroThreads) {
  SimConfig config = harness::paper_baseline();
  config.num_threads = 0;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(ConfigValidation, RejectsTooManyThreads) {
  SimConfig config = harness::paper_baseline();
  config.num_threads = kMaxThreads + 1;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(ConfigValidation, RejectsTooManyClusters) {
  SimConfig config = harness::paper_baseline();
  config.num_clusters = kMaxClusters + 1;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(ConfigValidation, RejectsRegisterFloorViolationPerClass) {
  // Integer floor: 2 threads x 16 arch + 6 rename = 38 > 16 total.
  SimConfig config = harness::paper_baseline();
  config.int_regs = 8;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);

  // FP floor: 2 threads x 32 arch + 6 rename = 70 > 64 total.
  config = harness::paper_baseline();
  config.fp_regs = 32;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);

  // 35 per cluster (70 total) is exactly at the floor: accepted.
  config = harness::paper_baseline();
  config.fp_regs = 35;
  EXPECT_NO_THROW(Simulator{config});
}

TEST(ConfigValidation, PaperConfigsAllPass) {
  EXPECT_NO_THROW(Simulator{harness::paper_baseline()});
  EXPECT_NO_THROW(Simulator{harness::iq_study_config(32)});
  EXPECT_NO_THROW(Simulator{harness::iq_study_config(64)});
  EXPECT_NO_THROW(Simulator{harness::rf_study_config(64)});
  EXPECT_NO_THROW(Simulator{harness::rf_study_config(128)});
  EXPECT_NO_THROW(Simulator{harness::smt4_baseline()});
}

// --------------------------------------------------------------------------
// Stat reset and run chunking
// --------------------------------------------------------------------------

TEST(StatReset, ZeroesCountersButKeepsMachineWarm) {
  SimConfig config = harness::paper_baseline();
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(3));
  sim.attach_thread(1, mem_trace(3));
  sim.run(20000);
  ASSERT_GT(sim.stats().committed_total(), 0u);

  sim.reset_stats();
  EXPECT_EQ(sim.stats().committed_total(), 0u);
  EXPECT_EQ(sim.stats().cycles, 0u);
  EXPECT_EQ(sim.stats().renamed_uops, 0u);

  // The warm machine commits immediately — no pipeline refill dip of
  // thousands of cycles.
  sim.run(100);
  EXPECT_GT(sim.stats().committed_total(), 0u);
}

TEST(RunChunking, ChunkedAndMonolithicRunsAreBitIdentical) {
  auto run_with_chunks = [](int chunk) {
    SimConfig config = harness::paper_baseline();
    Simulator sim(config);
    sim.attach_thread(0, ilp_trace(4));
    sim.attach_thread(1, mem_trace(4));
    for (int done = 0; done < 12000; done += chunk) {
      sim.run(static_cast<Cycle>(chunk));
    }
    return sim.stats();
  };
  const SimStats mono = run_with_chunks(12000);
  const SimStats chunked = run_with_chunks(250);
  EXPECT_EQ(mono.committed[0], chunked.committed[0]);
  EXPECT_EQ(mono.committed[1], chunked.committed[1]);
  EXPECT_EQ(mono.issued_uops, chunked.issued_uops);
  EXPECT_EQ(mono.squashed_uops, chunked.squashed_uops);
  EXPECT_EQ(mono.copies_created, chunked.copies_created);
}

// --------------------------------------------------------------------------
// Cluster-count extremes
// --------------------------------------------------------------------------

TEST(ClusterExtremes, SingleClusterProducesNoCopies) {
  SimConfig config = harness::paper_baseline();
  config.num_clusters = 1;
  // One cluster halves the machine's register stock; keep the floor.
  config.int_regs = 128;
  config.fp_regs = 128;
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(5));
  sim.attach_thread(1, mem_trace(5));
  sim.run(20000);
  EXPECT_GT(sim.stats().committed_total(), 1000u);
  EXPECT_EQ(sim.stats().copies_created, 0u);
  EXPECT_EQ(sim.stats().committed_copies, 0u);
}

TEST(ClusterExtremes, FourClustersCommitAndCommunicate) {
  SimConfig config = harness::paper_baseline();
  config.num_clusters = 4;
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(6));
  sim.attach_thread(1, mem_trace(6));
  sim.run(20000);
  EXPECT_GT(sim.stats().committed_total(), 1000u);
  EXPECT_GT(sim.stats().copies_created, 0u);
}

TEST(ClusterExtremes, ViewTotalsMatchClusterCount) {
  SimConfig config = harness::paper_baseline();
  config.num_clusters = 4;
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(7));
  sim.attach_thread(1, mem_trace(7));
  sim.run(500);
  const auto& view = sim.view();
  EXPECT_EQ(view.num_clusters, 4);
  EXPECT_EQ(view.iq_capacity_total(), 4 * config.iq_entries);
  EXPECT_EQ(view.rf_capacity_total(RegClass::kInt), 4 * config.int_regs);
}

// --------------------------------------------------------------------------
// Accounting sanity (view vs stats, unready vs occupancy)
// --------------------------------------------------------------------------

TEST(Accounting, ViewMirrorsStatsAndUnreadyIsBounded) {
  SimConfig config = harness::paper_baseline();
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(8));
  sim.attach_thread(1, mem_trace(8));
  for (int chunk = 0; chunk < 60; ++chunk) {
    sim.run(100);
    const auto& view = sim.view();
    const auto& stats = sim.stats();
    for (int t = 0; t < config.num_threads; ++t) {
      EXPECT_EQ(view.committed[t], stats.committed[t]);
      for (int c = 0; c < config.num_clusters; ++c) {
        EXPECT_GE(view.iq_unready_tc[t][c], 0);
        EXPECT_LE(view.iq_unready_tc[t][c], view.iq_occ_tc[t][c]);
      }
    }
  }
}

TEST(Accounting, CommittedNeverExceedsRenamed) {
  SimConfig config = harness::paper_baseline();
  Simulator sim(config);
  sim.attach_thread(0, ilp_trace(9));
  sim.attach_thread(1, mem_trace(9));
  for (int chunk = 0; chunk < 40; ++chunk) {
    sim.run(250);
    const auto& stats = sim.stats();
    EXPECT_LE(stats.committed_total(), stats.renamed_uops);
    EXPECT_LE(stats.committed_copies, stats.copies_created);
    EXPECT_LE(stats.squashed_uops,
              stats.renamed_uops + stats.copies_created);
  }
}

}  // namespace
}  // namespace clusmt::core
