#!/usr/bin/env bash
# Gate for the simulator-throughput trajectory: compares a freshly measured
# bench_perf_sim table against the committed BENCH_sim.json and fails when
# the TOTAL kcycles/s drops more than the allowed fraction below the
# committed point. Runner hardware varies, so the threshold is generous by
# default (15%) — it catches "someone made the simulator structurally
# slower", not scheduler noise.
#
# Usage: tools/check_perf_regression.sh COMMITTED_JSON FRESH_JSON [MAX_DROP_PCT]
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 COMMITTED_JSON FRESH_JSON [MAX_DROP_PCT]" >&2
  exit 2
fi
committed_json=$1
fresh_json=$2
max_drop_pct=${3:-15}

total_of() {
  # Extracts kcycles_per_s from the TOTAL row of a bench_perf_sim JSON
  # mirror (one object per row, stable key order).
  awk 'BEGIN { RS="}" } /"scheme": *"TOTAL"/ {
         if (match($0, /"kcycles_per_s": *[0-9.]+/)) {
           s = substr($0, RSTART, RLENGTH);
           sub(/.*: */, "", s);
           print s;
           exit
         }
       }' "$1"
}

committed=$(total_of "$committed_json")
fresh=$(total_of "$fresh_json")
if [ -z "$committed" ] || [ -z "$fresh" ]; then
  echo "error: TOTAL kcycles_per_s row missing ($committed_json: '$committed', $fresh_json: '$fresh')" >&2
  exit 2
fi

awk -v c="$committed" -v f="$fresh" -v d="$max_drop_pct" 'BEGIN {
  floor = c * (1 - d / 100.0);
  printf "perf guard: committed %.1f kcycles/s, measured %.1f, floor %.1f (-%s%%)\n",
         c, f, floor, d;
  if (f < floor) {
    printf "FAIL: measured throughput is more than %s%% below the committed point\n", d;
    exit 1;
  }
  print "OK";
}'
