#!/usr/bin/env bash
# Renders the simulator-throughput delta as a GitHub-flavoured markdown
# table: one row per (scheme, workload) cell of bench_perf_sim, committed
# BENCH_sim.json beside the freshly measured point and the percentage
# delta. CI appends it to the perf-smoke step summary so a PR shows
# exactly which cells moved, not just the gated TOTAL; the pass/fail
# decision stays with check_perf_regression.sh.
#
# Rows present in only one file (a preset added or dropped) render with
# "-" for the missing side, so coverage changes are visible rather than
# silently dropped. The TAPES bookkeeping row is skipped — its columns are
# counters, not kcycles/s.
#
# Usage: tools/perf_delta.sh COMMITTED_JSON FRESH_JSON
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 COMMITTED_JSON FRESH_JSON" >&2
  exit 2
fi

# Flattens a bench_perf_sim JSON mirror (one object per row, stable key
# order) into "scheme|workload<TAB>kcycles_per_s" lines.
rows_of() {
  awk 'BEGIN { RS="}" }
       /"scheme":/ {
         scheme = ""; workload = ""; kcps = "";
         if (match($0, /"scheme": *"[^"]*"/)) {
           scheme = substr($0, RSTART, RLENGTH);
           sub(/.*: *"/, "", scheme); sub(/"$/, "", scheme);
         }
         if (match($0, /"workload": *"[^"]*"/)) {
           workload = substr($0, RSTART, RLENGTH);
           sub(/.*: *"/, "", workload); sub(/"$/, "", workload);
         }
         if (match($0, /"kcycles_per_s": *[0-9.]+/)) {
           kcps = substr($0, RSTART, RLENGTH);
           sub(/.*: */, "", kcps);
         }
         if (scheme != "" && scheme != "TAPES" && kcps != "") {
           printf "%s|%s\t%s\n", scheme, workload, kcps;
         }
       }' "$1"
}

committed_rows=$(rows_of "$1")
fresh_rows=$(rows_of "$2")
if [ -z "$committed_rows" ] || [ -z "$fresh_rows" ]; then
  echo "error: no throughput rows found ($1 / $2)" >&2
  exit 2
fi

awk -F '\t' '
  NR == FNR { committed[$1] = $2; order[++n] = $1; next }
  {
    fresh[$1] = $2;
    if (!($1 in committed)) order[++n] = $1;  # new cell, keep at the end
  }
  END {
    print "| scheme | workload | committed kcycles/s | measured kcycles/s | delta |";
    print "|---|---|---:|---:|---:|";
    for (i = 1; i <= n; ++i) {
      key = order[i];
      split(key, part, "|");
      c = (key in committed) ? committed[key] : "";
      f = (key in fresh) ? fresh[key] : "";
      if (c != "" && f != "" && c + 0 > 0) {
        delta = sprintf("%+.1f%%", (f - c) / c * 100.0);
      } else {
        delta = "-";
      }
      printf "| %s | %s | %s | %s | %s |\n",
             part[1], part[2], c == "" ? "-" : c, f == "" ? "-" : f, delta;
    }
  }' <(printf '%s\n' "$committed_rows") <(printf '%s\n' "$fresh_rows")
