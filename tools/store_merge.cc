// store_merge: unions run-store cache directories (harness/run_store.h).
// The gather half of scatter-gather sweeps: workers that filled private
// --cache-dir stores (separate hosts, separate CI shards) merge them into
// one, and the next sweep runs warm against the union.
//
// Usage:
//   store_merge <into> <from>... [--dry-run]
//
// Every valid source record absent from <into> is copied atomically;
// records already present are compared byte-for-byte and skipped. A byte
// mismatch under the same key is a conflict — corruption or a stale
// format, never two valid answers, since records are content-keyed — and
// the destination record wins. Exit status 1 when any conflict was seen.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "harness/run_store.h"

using namespace clusmt;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: %s <into> <from>... [--dry-run]\n"
                 "Unions each <from> run store into <into>; the destination "
                 "wins conflicts.\n",
                 argv[0]);
    return 2;
  }
  harness::MergeOptions options;
  options.dry_run = args.get_bool("dry-run", false);

  const std::string& into = args.positional()[0];
  harness::MergeResult total;
  for (std::size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& from = args.positional()[i];
    const harness::MergeResult r =
        harness::merge_run_store(into, from, options);
    std::printf(
        "%s -> %s: %llu scanned, %llu %s, %llu identical, %llu conflicts, "
        "%llu invalid%s\n",
        from.c_str(), into.c_str(), static_cast<unsigned long long>(r.scanned),
        static_cast<unsigned long long>(r.copied),
        options.dry_run ? "would copy" : "copied",
        static_cast<unsigned long long>(r.identical),
        static_cast<unsigned long long>(r.conflicts),
        static_cast<unsigned long long>(r.invalid),
        options.dry_run ? " [dry run]" : "");
    total.scanned += r.scanned;
    total.copied += r.copied;
    total.identical += r.identical;
    total.conflicts += r.conflicts;
    total.invalid += r.invalid;
  }
  if (args.positional().size() > 2) {
    std::printf(
        "total: %llu scanned, %llu %s, %llu identical, %llu conflicts, "
        "%llu invalid\n",
        static_cast<unsigned long long>(total.scanned),
        static_cast<unsigned long long>(total.copied),
        options.dry_run ? "would copy" : "copied",
        static_cast<unsigned long long>(total.identical),
        static_cast<unsigned long long>(total.conflicts),
        static_cast<unsigned long long>(total.invalid));
  }
  return total.conflicts > 0 ? 1 : 0;
}
