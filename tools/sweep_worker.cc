// Spool worker: the execution half of the sharded sweep protocol
// (harness/spool.h, harness/shard.h). A long-running process that loops
// claim -> simulate -> spill to the shared --cache-dir RunStore -> ack,
// exiting when the spool drains or after --idle-timeout-ms without work.
// Run one (or several) per host against a shared spool directory; the
// coordinator bench spawns local ones itself via --shard-workers.
//
// Usage:
//   sweep_worker --spool-dir D --cache-dir C [--jobs N] [--lease-ms M]
//                [--max-attempts K] [--idle-timeout-ms T] [--worker-id ID]
//
// --spool-dir / --cache-dir fall back to $CLUSMT_SPOOL_DIR /
// $CLUSMT_CACHE_DIR. --jobs (claimant threads, each simulating one cell at
// a time) falls back to $CLUSMT_JOBS, then all cores; the value is
// re-exported as $CLUSMT_JOBS so nothing below oversubscribes. The tape
// registry stays warm across cells, so a worker pays each (profile, seed)
// trace recording once per process.
//
// Robustness: claims are leases — a heartbeat thread refreshes their mtime
// every lease/3, and a claim whose holder dies goes stale and is stolen
// (by this worker's own idle loop, a sibling, or the coordinator). A cell
// whose simulation throws is failed back into the queue with its message;
// after --max-attempts failures it turns terminal. Duplicate execution
// after a steal is harmless: results are content-keyed and byte-identical.
//
// SIGTERM drains: the worker surrenders every held lease back to todo/
// (attempt count unchanged — nothing failed) and exits promptly, so a
// coordinator tearing the swarm down or an operator's kill never strands
// cells behind a lease expiry. SIGKILL still loses nothing: the leases go
// stale and are stolen.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"

#include "common/cli.h"
#include "harness/run_cache.h"
#include "harness/run_key.h"
#include "harness/runner.h"
#include "harness/spool.h"

using namespace clusmt;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spool-dir D --cache-dir C [--jobs N] [--lease-ms M]\n"
      "          [--max-attempts K] [--idle-timeout-ms T] [--worker-id ID]\n"
      "--spool-dir/--cache-dir fall back to $CLUSMT_SPOOL_DIR /\n"
      "$CLUSMT_CACHE_DIR; --jobs to $CLUSMT_JOBS, then all cores.\n",
      argv0);
  std::exit(2);
}

std::string flag_or_env(const CliArgs& args, const std::string& flag,
                        const char* env) {
  std::string value = args.get_string(flag, "");
  if (value.empty()) {
    if (const char* e = std::getenv(env)) value = e;
  }
  return value;
}

/// Claims held by live claimant threads, heartbeat-refreshed as a set and
/// surrendered wholesale on a drain.
class LeaseTable {
 public:
  void add(const harness::Spool::Claim& claim) {
    std::lock_guard lock(mutex_);
    claims_.push_back(claim);
  }
  void remove(const harness::Spool::Claim& claim) {
    std::lock_guard lock(mutex_);
    std::erase_if(claims_, [&](const harness::Spool::Claim& c) {
      return c.path == claim.path;
    });
  }
  void refresh_all() const {
    std::lock_guard lock(mutex_);
    for (const harness::Spool::Claim& c : claims_) {
      std::error_code ec;
      std::filesystem::last_write_time(
          c.path, std::filesystem::file_time_type::clock::now(), ec);
    }
  }
  /// SIGTERM drain: every held lease goes back to todo/ with its attempt
  /// count unchanged (the cell never ran to failure), instantly
  /// re-claimable instead of waiting out a lease expiry.
  std::size_t release_all(const harness::Spool& spool) {
    std::lock_guard lock(mutex_);
    std::size_t released = 0;
    for (const harness::Spool::Claim& c : claims_) {
      if (spool.release(c)) ++released;
    }
    claims_.clear();
    return released;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<harness::Spool::Claim> claims_;
};

volatile std::sig_atomic_t g_drain = 0;

extern "C" void handle_sigterm(int) { g_drain = 1; }

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string spool_dir = flag_or_env(args, "spool-dir",
                                            "CLUSMT_SPOOL_DIR");
  const std::string cache_dir = flag_or_env(args, "cache-dir",
                                            "CLUSMT_CACHE_DIR");
  if (spool_dir.empty() || cache_dir.empty()) usage(argv[0]);

  std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  if (jobs == 0) {
    if (const char* env = std::getenv("CLUSMT_JOBS")) {
      jobs = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  // Re-export the budget: any nested ThreadPool(0) in this process obeys
  // the coordinator's core division instead of grabbing every core.
  setenv("CLUSMT_JOBS", std::to_string(jobs).c_str(), 1);

  const int lease_ms = static_cast<int>(args.get_int("lease-ms", 15000));
  const int max_attempts = static_cast<int>(args.get_int(
      "max-attempts", harness::Spool::kDefaultMaxAttempts));
  const int idle_timeout_ms =
      static_cast<int>(args.get_int("idle-timeout-ms", 10000));
  std::string worker_id = args.get_string("worker-id", "");
  if (worker_id.empty()) worker_id = "w" + std::to_string(getpid());

  harness::RunCache& cache = harness::RunCache::instance();
  cache.set_store_dir(cache_dir);
  const harness::RunStore store(cache_dir);
  const harness::Spool spool(spool_dir, max_attempts);
  if (!spool.init_dirs()) {
    std::fprintf(stderr, "error: cannot open spool %s\n", spool_dir.c_str());
    return 1;
  }

  struct sigaction drain_action = {};
  drain_action.sa_handler = handle_sigterm;
  sigaction(SIGTERM, &drain_action, nullptr);

  LeaseTable leases;
  std::atomic<bool> stop{false};
  // The heartbeat doubles as the drain watcher: it polls in short slices
  // (the coordinator's SIGTERM→SIGKILL grace is seconds, so sleeping a
  // whole lease/3 period would blow through it), refreshes held leases
  // once per period, and on SIGTERM releases them and exits the process.
  std::thread heartbeat([&] {
    const auto period =
        std::chrono::milliseconds(std::max(50, lease_ms / 3));
    auto last_refresh = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_relaxed)) {
      if (g_drain != 0) {
        const std::size_t released = leases.release_all(spool);
        std::fprintf(stderr,
                     "[worker %s] SIGTERM: drained, released %zu lease(s) "
                     "back to todo\n",
                     worker_id.c_str(), released);
        _exit(0);
      }
      const auto now = std::chrono::steady_clock::now();
      if (now - last_refresh >= period) {
        leases.refresh_all();
        last_refresh = now;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::atomic<std::uint64_t> simulated{0};
  std::atomic<std::uint64_t> failed{0};
  const auto claimant = [&] {
    auto last_work = std::chrono::steady_clock::now();
    while (true) {
      if (g_drain != 0) return;  // draining: claim nothing new
      std::optional<harness::Spool::Claim> claim = spool.claim(worker_id);
      if (!claim) {
        if (spool.drained()) return;
        // Straggler stealing: requeue siblings' stale leases while idle.
        (void)spool.reclaim_stale(std::chrono::milliseconds(lease_ms));
        if (std::chrono::steady_clock::now() - last_work >
            std::chrono::milliseconds(idle_timeout_ms)) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      last_work = std::chrono::steady_clock::now();
      const harness::SpoolCell& cell = claim->cell;
      // Refuse cells whose spec no longer reproduces its own key: the
      // codec and hash_config/hash_trace drifted apart (a knob added to
      // one but not the other), and simulating would file a wrong-machine
      // result under this key.
      if (!(harness::run_key(cell.config, cell.workload, cell.cycles,
                             cell.warmup) == cell.key)) {
        spool.fail(*claim, "cell spec does not re-derive its key "
                           "(spool codec / run_key drift)");
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      leases.add(*claim);
      // Fault point `worker.sim`: error → this execution attempt fails
      // cleanly (requeued with a bumped attempt count, terminal at the
      // cap); crash → the worker dies mid-simulation holding the lease.
      if (faultpoint::inject_error("worker.sim")) {
        leases.remove(*claim);
        spool.fail(*claim, "injected fault: worker.sim");
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      bool ok = false;
      std::string error;
      try {
        // Through the cache: a cell stolen-and-finished elsewhere loads
        // from the store instead of re-simulating, and the tape registry
        // underneath keeps (profile, seed) recordings warm per process.
        (void)cache.get_or_run(cell.key, [&] {
          return harness::simulate_workload(cell.config, cell.workload,
                                            cell.cycles, cell.warmup);
        });
        ok = true;
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown exception";
      }
      leases.remove(*claim);
      if (ok) {
        // The ack contract is "the result is durably in the store": the
        // cache's spill is best-effort, so verify and retry before acking.
        std::error_code ec;
        if (!std::filesystem::exists(store.path_of(cell.key), ec)) {
          ok = store.save(cell.key,
                          cache.get_or_run(cell.key, [&] {
                            return harness::simulate_workload(
                                cell.config, cell.workload, cell.cycles,
                                cell.warmup);
                          }));
        }
      }
      if (!ok) {
        spool.fail(*claim, error.empty() ? "run store write failed" : error);
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      (void)spool.ack(*claim);
      simulated.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> claimants;
  claimants.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) claimants.emplace_back(claimant);
  for (std::thread& t : claimants) t.join();
  stop.store(true, std::memory_order_relaxed);
  heartbeat.join();

  std::fprintf(stderr,
               "[worker %s] %llu cells done, %llu failed attempts, exiting "
               "(%s)\n",
               worker_id.c_str(),
               static_cast<unsigned long long>(
                   simulated.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   failed.load(std::memory_order_relaxed)),
               spool.drained() ? "spool drained" : "idle timeout");
  return 0;
}
