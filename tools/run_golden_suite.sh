#!/usr/bin/env bash
# Regenerates the golden-numbers tables (bench/golden/*.json): a fixed-seed,
# small-cycle-budget run of the headline bench and the main figure benches.
#
# Usage: tools/run_golden_suite.sh BENCH_BIN_DIR OUT_DIR
#   BENCH_BIN_DIR  directory holding the bench_* binaries (e.g. build/bench)
#   OUT_DIR        where the golden JSON files go (bench/golden to refresh
#                  the checked-in goldens, a scratch dir in CI)
#
# Every knob that affects the numbers is pinned here — cycles, warmup, seed,
# suite shape — so the tables are bit-reproducible on any host (the
# simulator is deterministic in its inputs). Set CLUSMT_CACHE_DIR to reuse
# finished runs across invocations; jobs count never changes results.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 BENCH_BIN_DIR OUT_DIR" >&2
  exit 2
fi
bin_dir=$1
out_dir=$2
mkdir -p "$out_dir"

flags=(--per-type 1 --mixes 2 --cycles 20000 --warmup 5000 --seed 1)

# Headline + main figure benches, plus the ablation benches whose runtime
# the shared run cache pays for (ROADMAP "golden coverage growth"): the
# ablations reuse the figure benches' base configurations, so most of their
# cells are cache hits on a warm CI run dir. ext_hetero gates the
# heterogeneous-shape grid; its symmetric column shares cells with the
# rf-study benches.
for bench in headline_summary fig2_iq_throughput fig3_copies fig10_fairness \
             ablate_links ablate_steering ext_hetero; do
  "$bin_dir/bench_$bench" "${flags[@]}" \
    --golden-emit "$out_dir/$bench.json" >/dev/null
done
echo "golden tables written to $out_dir"
