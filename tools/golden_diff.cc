// Compares a freshly generated bench table against a checked-in golden
// (both in CsvWriter::to_json format) with per-metric relative tolerances.
// The CI golden-gate job runs this over bench/golden/ on every PR.
//
// Usage:
//   golden_diff GOLDEN.json FRESH.json [--rtol R] [--atol A]
//               [--tol METRIC=R]...
//
// Exit status: 0 all metrics within tolerance, 1 mismatches (per-metric
// report on stdout), 2 usage or file/parse errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/golden.h"

namespace {

using clusmt::harness::GoldenTable;
using clusmt::harness::GoldenTolerance;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: golden_diff GOLDEN.json FRESH.json [--rtol R] "
               "[--atol A] [--tol METRIC=R]...\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "golden_diff: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double parse_tol(const char* flag, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  // Reject nan/inf explicitly: a non-finite tolerance would make every
  // comparison pass and silently disable the gate.
  if (end == value.c_str() || *end != '\0' || !std::isfinite(v) || v < 0.0) {
    std::fprintf(stderr, "golden_diff: bad %s value '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string golden_path;
  std::string fresh_path;
  GoldenTolerance tol;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--rtol") {
      tol.rtol = parse_tol("--rtol", next());
    } else if (arg == "--atol") {
      tol.atol = parse_tol("--atol", next());
    } else if (arg == "--tol") {
      // --tol METRIC=R may repeat; later entries win.
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) usage();
      tol.per_metric[spec.substr(0, eq)] =
          parse_tol("--tol", spec.substr(eq + 1));
    } else if (arg.rfind("--", 0) == 0) {
      usage();
    } else if (golden_path.empty()) {
      golden_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      usage();
    }
  }
  if (golden_path.empty() || fresh_path.empty()) usage();

  GoldenTable golden;
  GoldenTable fresh;
  try {
    golden = clusmt::harness::parse_json_table(read_file(golden_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "golden_diff: %s: %s\n", golden_path.c_str(),
                 e.what());
    return 2;
  }
  try {
    fresh = clusmt::harness::parse_json_table(read_file(fresh_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "golden_diff: %s: %s\n", fresh_path.c_str(),
                 e.what());
    return 2;
  }

  const auto diff = clusmt::harness::diff_golden_tables(golden, fresh, tol);
  std::printf("%s vs %s: %s", golden_path.c_str(), fresh_path.c_str(),
              diff.report().c_str());
  return diff.pass() ? 0 : 1;
}
