// clusmt-cache gc: size-cap / LRU-by-mtime sweep over a persistent run
// store (harness/run_store.h). The store itself never evicts, so paper-
// scale grids grow cache dirs without bound; this tool (or a cron job
// around it) keeps them within budget.
//
// Usage:
//   cache_gc gc    --dir DIR [--max-mb N | --max-bytes N] [--max-files N]
//                  [--dry-run]
//   cache_gc stats --dir DIR
//   cache_gc spool --dir DIR [--lease-sec N] [--done-ttl-sec N] [--dry-run]
//
// `gc` deletes the oldest records (by mtime) until the store fits every
// given cap; with no cap it only reports. `stats` prints the store's
// record count and size. --dir falls back to $CLUSMT_CACHE_DIR, matching
// the bench flags. Only `*.run` records are ever touched; emptied key-
// prefix subdirectories are pruned.
//
// `spool` sweeps a sharded-sweep spool directory (harness/spool.h)
// instead: orphaned claimed/ leases older than --lease-sec are requeued,
// acked done/ and terminal failed/ entries older than --done-ttl-sec are
// deleted, and emptied per-worker claim dirs are pruned. Its --dir falls
// back to $CLUSMT_SPOOL_DIR.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.h"
#include "harness/run_store.h"
#include "harness/spool.h"

using namespace clusmt;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s gc    --dir DIR [--max-mb N | --max-bytes N]\n"
      "                [--max-files N] [--dry-run]\n"
      "       %s stats --dir DIR\n"
      "       %s spool --dir DIR [--lease-sec N] [--done-ttl-sec N]\n"
      "                [--dry-run]\n"
      "--dir falls back to $CLUSMT_CACHE_DIR ($CLUSMT_SPOOL_DIR for "
      "spool).\n",
      argv0, argv0, argv0);
  std::exit(2);
}

[[nodiscard]] double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().size() != 1) usage(argv[0]);
  const std::string& command = args.positional()[0];

  const char* dir_env =
      command == "spool" ? "CLUSMT_SPOOL_DIR" : "CLUSMT_CACHE_DIR";
  std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    if (const char* env = std::getenv(dir_env)) dir = env;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "error: no --dir given and %s unset\n", dir_env);
    return 2;
  }

  if (command == "spool") {
    const std::int64_t lease_sec = args.get_int("lease-sec", 300);
    const std::int64_t done_ttl_sec = args.get_int("done-ttl-sec", 24 * 3600);
    if (lease_sec < 0 || done_ttl_sec < 0) {
      std::fprintf(stderr, "error: TTLs must be >= 0\n");
      return 2;
    }
    harness::SpoolGcOptions options;
    options.lease = std::chrono::seconds(lease_sec);
    options.done_ttl = std::chrono::seconds(done_ttl_sec);
    options.dry_run = args.get_bool("dry-run", false);
    const harness::SpoolGcResult r = harness::gc_spool(dir, options);
    std::printf(
        "%s: %llu entries scanned; %s %llu orphaned leases, expired "
        "%llu done + %llu failed, pruned %llu worker dirs%s\n",
        dir.c_str(), static_cast<unsigned long long>(r.scanned),
        options.dry_run ? "would requeue" : "requeued",
        static_cast<unsigned long long>(r.reclaimed),
        static_cast<unsigned long long>(r.deleted_done),
        static_cast<unsigned long long>(r.deleted_failed),
        static_cast<unsigned long long>(r.removed_dirs),
        options.dry_run ? " [dry run]" : "");
    return 0;
  }

  if (command == "stats") {
    // A capless dry run is exactly a scan.
    const harness::GcResult r =
        harness::gc_run_store(dir, {.dry_run = true});
    std::printf("%s: %llu records, %.1f MB\n", dir.c_str(),
                static_cast<unsigned long long>(r.scanned_files),
                mb(r.scanned_bytes));
    return 0;
  }
  if (command != "gc") usage(argv[0]);

  const std::int64_t max_bytes = args.get_int("max-bytes", 0);
  const std::int64_t max_mb = args.get_int("max-mb", 0);
  const std::int64_t max_files = args.get_int("max-files", 0);
  if (max_bytes < 0 || max_mb < 0 || max_files < 0) {
    std::fprintf(stderr, "error: caps must be >= 0 (0 = unlimited)\n");
    return 2;
  }
  harness::GcOptions options;
  options.max_bytes = static_cast<std::uint64_t>(max_bytes);
  if (max_mb != 0) {
    if (options.max_bytes != 0) {
      std::fprintf(stderr, "error: give --max-mb or --max-bytes, not both\n");
      return 2;
    }
    options.max_bytes = static_cast<std::uint64_t>(max_mb) * 1024 * 1024;
  }
  options.max_files = static_cast<std::uint64_t>(max_files);
  options.dry_run = args.get_bool("dry-run", false);

  const harness::GcResult r = harness::gc_run_store(dir, options);
  std::printf(
      "%s: scanned %llu records (%.1f MB); %s %llu records (%.1f MB)%s\n",
      dir.c_str(), static_cast<unsigned long long>(r.scanned_files),
      mb(r.scanned_bytes), options.dry_run ? "would delete" : "deleted",
      static_cast<unsigned long long>(r.deleted_files), mb(r.deleted_bytes),
      options.dry_run ? " [dry run]" : "");
  if (r.removed_dirs > 0) {
    std::printf("pruned %llu empty prefix dirs\n",
                static_cast<unsigned long long>(r.removed_dirs));
  }
  return 0;
}
